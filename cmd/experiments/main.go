// Command experiments regenerates every table and figure series of the
// reproduction (DESIGN.md §4) and prints them as text tables; with -out it
// writes the same content to a file. EXPERIMENTS.md is produced from this
// output.
//
// Usage:
//
//	experiments             # standard sweep
//	experiments -quick      # small sweep (CI-sized)
//	experiments -out results.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/cyclecover/cyclecover/internal/bench"
	"github.com/cyclecover/cyclecover/internal/cache"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	outPath := flag.String("out", "", "also write results to this file")
	workers := flag.Int("workers", 0, "parallel workers for the sweeps (0 = GOMAXPROCS)")
	cold := flag.Bool("cold", false, "skip the warm-start snapshot (honest cold timings)")
	saveCache := flag.String("save-cache", "", "after the sweep, write the covering cache snapshot here")
	flag.Parse()
	sweepWorkers = *workers
	// Regenerating the snapshot from a warm cache would only write the old
	// snapshot back, so -save-cache forces a cold sweep.
	bench.SkipWarmStart = *cold || *saveCache != ""

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	// SIGINT/SIGTERM cancel the sweep context: rows not yet started are
	// skipped and the run fails with the interrupt instead of grinding
	// through the remaining tables.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, w, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *saveCache != "" {
		// Atomic write: an interrupted run can never leave a truncated
		// snapshot for the next warm start to trip over.
		err := cache.WriteFileAtomic(*saveCache, func(f *os.File) error {
			return bench.SaveWarmSnapshot(f)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: saving cache:", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, w io.Writer, quick bool) error {
	oddNs := seq(3, 99, 2)
	evenNs := seq(4, 98, 2)
	f1Ns := []int{11, 21, 51, 101, 151, 201}
	f2Ns := []int{5, 6, 8, 9, 12, 15, 21, 33}
	f3Ns := []int{5, 7, 9, 11, 13, 15}
	c1Ns := []int{5, 7, 9, 11, 15, 21, 31}
	a1Ns := []int{8, 12, 16, 20, 24, 40, 80}
	t3Ns := []int{3, 4, 5, 6, 7, 8, 10, 12, 16, 20}
	proofLimit := 8
	doubleLimit := 12
	if quick {
		oddNs = seq(3, 21, 2)
		evenNs = seq(4, 20, 2)
		f1Ns = []int{11, 51, 101}
		f2Ns = []int{5, 8, 11}
		f3Ns = []int{5, 9}
		c1Ns = []int{5, 9, 15}
		a1Ns = []int{8, 16, 24}
		t3Ns = []int{3, 4, 5, 6}
		proofLimit = 6
		doubleLimit = 8
	}

	section(w, "T1 — Theorem 1: rho(n) for odd n (count, composition, optimality)")
	t1, err := bench.ParallelTableT1Ctx(ctx, oddNs, sweepWorkers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderT1(t1))

	section(w, "T2 — Theorem 2: rho(n) for even n (achieved vs theorem)")
	t2, err := bench.ParallelTableT2Ctx(ctx, evenNs, sweepWorkers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderT2(t2))

	section(w, "T3 — exact optima by search (rho certified; rho-1 proved infeasible)")
	t3, err := bench.TableT3(t3Ns, proofLimit)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderT3(t3))

	section(w, "E1 — the paper's worked example on G=C4, I=K4")
	e1 := bench.ExampleK4()
	fmt.Fprintf(w, "tour (1,3,4,2) routable: %v (paper: no)\n", e1.BadTourRoutable)
	fmt.Fprintf(w, "covering {(1,2,3,4),(1,2,4),(1,3,4)} valid: %v with %d cycles; rho(4) = %d\n\n",
		e1.GoodCoveringValid, e1.GoodCoveringSize, e1.RhoOfK4)

	section(w, "C1 — cost of the DRC: covering sizes with vs without routing constraint")
	fmt.Fprintln(w, bench.RenderC1(bench.TableC1(c1Ns)))

	section(w, "C2 — objective comparison: number of cycles (this paper) vs total size (EMZ/GLS)")
	c2, err := bench.TableC2(c1Ns)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderC2(c2))

	section(w, "F1 — asymptotics: rho(n)/n^2 → 1/8")
	fmt.Fprintln(w, bench.RenderF1(bench.SeriesF1(f1Ns)))

	section(w, "F2 — survivability: single- and double-failure drills")
	f2, err := bench.ParallelTableF2Ctx(ctx, f2Ns, doubleLimit, sweepWorkers)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderF2(f2))

	section(w, "F3 — WDM cost profile of planned networks")
	f3, err := bench.TableF3(f3Ns)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderF3(f3))

	section(w, "X1 — extension: lambda*K_n instances")
	x1, err := bench.TableX1([]int{7, 9}, []int{1, 2, 3, 4})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderX1(x1))

	section(w, "X2 — extension topologies: grid, torus, tree of rings")
	x2, err := bench.TableX2()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderX2(x2))

	section(w, "A1 — ablation: even constructor layers")
	fmt.Fprintln(w, bench.RenderA1(bench.TableA1(a1Ns)))
	return nil
}

// sweepWorkers is the worker count for the parallel sweeps, set from
// -workers.
var sweepWorkers int

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n\n", title)
}

func seq(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

package main

import (
	"context"
	"io"
	"strings"
	"testing"
)

// TestQuickSweepRuns is the end-to-end smoke test for the full experiment
// harness: the -quick sweep must complete without error and emit every
// section of DESIGN.md §4.
func TestQuickSweepRuns(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, section := range []string{
		"T1 —", "T2 —", "T3 —", "E1 —", "C1 —", "C2 —",
		"F1 —", "F2 —", "F3 —", "X1 —", "X2 —", "A1 —",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("missing section %q", section)
		}
	}
	if strings.Contains(out, "false  true     search") {
		t.Error("no search-range row may be invalid")
	}
}

func TestSeq(t *testing.T) {
	got := seq(3, 9, 2)
	want := []int{3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("seq = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq = %v, want %v", got, want)
		}
	}
}

var _ io.Writer = (*strings.Builder)(nil)

package main

import "testing"

func TestParseDemand(t *testing.T) {
	cases := []struct {
		spec     string
		requests int
		ok       bool
	}{
		{"alltoall", 21, true},
		{"neighbors", 7, true},
		{"lambda:2", 42, true},
		{"hub:3", 6, true},
		{"random:1.0:5", 21, true},
		{"random:0.0:5", 0, true},
		{"lambda:0", 0, false},
		{"lambda:x", 0, false},
		{"lambda:1152921504606846976", 0, false}, // would overflow the edge count
		{"hub:9", 0, false},
		{"hub:-1", 0, false},
		{"random:0.5", 0, false},
		{"random:a:b", 0, false},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		in, err := parseDemand(7, c.spec)
		if c.ok != (err == nil) {
			t.Errorf("parseDemand(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if err == nil && in.Requests() != c.requests {
			t.Errorf("parseDemand(%q): %d requests, want %d", c.spec, in.Requests(), c.requests)
		}
	}
}

// Command cyclecover generates, verifies and prints DRC cycle coverings.
//
// Usage:
//
//	cyclecover -n 9                       # optimal covering of K_9
//	cyclecover -n 10 -json                # machine-readable output
//	cyclecover -n 12 -demand hub:0        # greedy covering of hubbed demand
//	cyclecover -n 8 -demand lambda:2      # covering of 2K_8
//	cyclecover -n 14 -demand random:0.3:7 # random demand, density 0.3, seed 7
//	cyclecover -n 12 -strategy exact      # force one construction strategy
//	cyclecover -n 20 -strategy portfolio -timeout 5s
//	cyclecover -n 11 -delta add:0:4       # incremental replan after a change
//	cyclecover -n 10 -demand petersen     # shortest cycle cover of a snark
//	cyclecover -n 28 -demand flower:7     # flower snark J7, provably optimal
//
// General-topology demands (petersen, blanusa:<1|2>, flower:<k>,
// prism:<k>, cubic:<seed>, edges:<u-v,...>, adj:<nbrs;...>) switch the
// objective to the shortest cycle cover of the host graph: the cover is
// judged by total edge count against the counting lower bound, not by
// cycle count against ρ(n).
//
// -strategy selects a construction path from the strategy registry
// (closed-form, exact, repair, greedy, or portfolio to race them);
// without it the default pipeline picks by demand class. -timeout bounds
// the construction: on expiry the search is cancelled mid-branch and the
// command exits non-zero.
//
// -delta switches to incremental replanning: the -n/-demand instance is
// planned as the parent, the delta (add:<u>:<v> | remove:<u>:<v> |
// fail:<u>:<v> | set:<u>:<v>:<m>) is applied to its demand, and the
// child is planned by warm-starting repair from the parent covering —
// the same path POST /plan/delta serves — falling back to cold
// construction when repair exhausts its budget.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	cyclecover "github.com/cyclecover/cyclecover"
)

type output struct {
	N        int     `json:"n"`
	Demand   string  `json:"demand"`
	Strategy string  `json:"strategy,omitempty"`
	Cycles   [][]int `json:"cycles"`
	Size     int     `json:"size"`
	Rho      int     `json:"rho,omitempty"`
	// Length and SCCLowerBound report the shortest-cycle-cover objective
	// for general-topology demands; zero for ring demands.
	Length        int  `json:"length,omitempty"`
	SCCLowerBound int  `json:"sccLowerBound,omitempty"`
	Optimal       bool `json:"optimal"`
	Triangles     int  `json:"c3"`
	Quads         int  `json:"c4"`
	Slack         int  `json:"slack"`
	Valid         bool `json:"valid"`
}

func main() {
	n := flag.Int("n", 9, "ring size (>= 3)")
	demandSpec := flag.String("demand", "alltoall",
		"demand: alltoall | lambda:<k> | hub:<node> | neighbors | random:<density>:<seed> | petersen | blanusa:<1|2> | flower:<k> | prism:<k> | cubic:<seed> | edges:<u-v,...> | adj:<nbrs;...>")
	strategy := flag.String("strategy", "",
		"construction strategy: "+strings.Join(cyclecover.Strategies(), " | ")+" (default: pick by demand class)")
	timeout := flag.Duration("timeout", 0, "construction deadline; expiry cancels the search mid-branch (0 = none)")
	deltaSpec := flag.String("delta", "",
		"incremental replan: apply a delta (add:<u>:<v> | remove:<u>:<v> | fail:<u>:<v> | set:<u>:<v>:<m>) to the planned instance and repair its covering")
	asJSON := flag.Bool("json", false, "emit JSON")
	quiet := flag.Bool("quiet", false, "suppress per-cycle listing")
	flag.Parse()

	in, err := parseDemand(*n, *demandSpec)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *deltaSpec != "" {
		runDelta(ctx, in, *strategy, *deltaSpec, *asJSON, *quiet)
		return
	}

	var cv *cyclecover.Covering
	optimal := false
	switch {
	case *strategy != "":
		cv, err = cyclecover.CoverInstanceStrategy(ctx, in, *strategy)
		if err == nil && !in.IsGeneral() {
			optimal = *demandSpec == "alltoall" && cv.Size() == cyclecover.Rho(*n)
		}
	case *demandSpec == "alltoall":
		cv, optimal, err = cyclecover.CoverAllToAllCtx(ctx, *n)
	default:
		cv, err = cyclecover.CoverInstanceCtx(ctx, in)
	}
	if err != nil {
		fatal(err)
	}
	if in.IsGeneral() {
		optimal = cv.TotalLength() == cyclecover.SCCLowerBound(in)
	}
	verifyErr := cyclecover.Verify(cv, in)

	if *asJSON {
		out := output{
			N:        *n,
			Demand:   in.Name,
			Strategy: *strategy,
			Size:     cv.Size(),
			Optimal:  optimal,
			Valid:    verifyErr == nil,
		}
		if in.IsGeneral() {
			out.Length = cv.TotalLength()
			out.SCCLowerBound = cyclecover.SCCLowerBound(in)
		} else {
			out.Triangles = cv.NumTriangles()
			out.Quads = cv.NumQuads()
			out.Slack = cv.DuplicateSlots()
			if *demandSpec == "alltoall" {
				out.Rho = cyclecover.Rho(*n)
			}
		}
		for _, c := range cv.Cycles {
			out.Cycles = append(out.Cycles, c.Vertices())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("demand: %s\n", in.Name)
	if *strategy != "" {
		fmt.Printf("strategy: %s\n", *strategy)
	}
	if in.IsGeneral() {
		fmt.Printf("shortest cycle cover: %d cycles, total length %d (lower bound %d)\n",
			cv.Size(), cv.TotalLength(), cyclecover.SCCLowerBound(in))
		if optimal {
			fmt.Println("provably optimal: meets the counting lower bound")
		}
	} else {
		fmt.Println(cyclecover.Describe(cv))
		if *demandSpec == "alltoall" {
			fmt.Printf("rho(%d) = %d, optimal certified: %v\n", *n, cyclecover.Rho(*n), optimal)
		}
	}
	if verifyErr != nil {
		fmt.Printf("VERIFY FAILED: %v\n", verifyErr)
		os.Exit(1)
	}
	if in.IsGeneral() {
		fmt.Println("verified: every cycle a closed walk on host edges, every host edge covered")
	} else {
		fmt.Println("verified: every request covered, every cycle DRC-routable")
	}
	if !*quiet {
		for i, c := range cv.Cycles {
			fmt.Printf("  cycle %3d: %v\n", i, c)
		}
	}
}

// deltaOutput is the JSON shape of a -delta run.
type deltaOutput struct {
	Parent   string  `json:"parent"`
	Delta    string  `json:"delta"`
	Child    string  `json:"child"`
	N        int     `json:"n"`
	Cycles   [][]int `json:"cycles"`
	Size     int     `json:"size"`
	Method   string  `json:"method"`
	Repaired bool    `json:"repaired"`
	Optimal  bool    `json:"optimal"`
	Valid    bool    `json:"valid"`
}

// runDelta plans the parent instance through a cached planner, applies
// the delta and replans incrementally — warm repair with cold fallback.
func runDelta(ctx context.Context, in cyclecover.Instance, strategy, deltaSpec string, asJSON, quiet bool) {
	d, err := cyclecover.ParseDelta(deltaSpec)
	if err != nil {
		fatal(err)
	}
	p := cyclecover.NewPlanner(cyclecover.WithStrategy(strategy))
	if _, err := p.CoverInstanceCtx(ctx, in); err != nil {
		fatal(fmt.Errorf("planning parent: %w", err))
	}
	pd, err := p.PlanDeltaCtx(ctx, p.SignatureOf(in), d)
	if err != nil {
		fatal(err)
	}
	verifyErr := cyclecover.Verify(pd.Covering, pd.Child)

	if asJSON {
		out := deltaOutput{
			Parent:   pd.ParentSignature,
			Delta:    d.String(),
			Child:    pd.Signature,
			N:        pd.Child.N(),
			Size:     pd.Covering.Size(),
			Method:   pd.Method,
			Repaired: pd.Repaired,
			Optimal:  pd.Optimal,
			Valid:    verifyErr == nil,
		}
		for _, c := range pd.Covering.Cycles {
			out.Cycles = append(out.Cycles, c.Vertices())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("parent: %s (%s)\n", in.Name, pd.ParentSignature)
	fmt.Printf("delta:  %s -> child %s\n", d, pd.Signature)
	fmt.Println(cyclecover.Describe(pd.Covering))
	fmt.Printf("method: %s (repaired: %v)\n", pd.Method, pd.Repaired)
	if verifyErr != nil {
		fmt.Printf("VERIFY FAILED: %v\n", verifyErr)
		os.Exit(1)
	}
	fmt.Println("verified: every request covered, every cycle DRC-routable")
	if !quiet {
		for i, c := range pd.Covering.Cycles {
			fmt.Printf("  cycle %3d: %v\n", i, c)
		}
	}
}

func parseDemand(n int, spec string) (cyclecover.Instance, error) {
	return cyclecover.ParseInstance(n, spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cyclecover:", err)
	os.Exit(1)
}

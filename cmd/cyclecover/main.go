// Command cyclecover generates, verifies and prints DRC cycle coverings.
//
// Usage:
//
//	cyclecover -n 9                       # optimal covering of K_9
//	cyclecover -n 10 -json                # machine-readable output
//	cyclecover -n 12 -demand hub:0        # greedy covering of hubbed demand
//	cyclecover -n 8 -demand lambda:2      # covering of 2K_8
//	cyclecover -n 14 -demand random:0.3:7 # random demand, density 0.3, seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	cyclecover "github.com/cyclecover/cyclecover"
)

type output struct {
	N         int     `json:"n"`
	Demand    string  `json:"demand"`
	Cycles    [][]int `json:"cycles"`
	Size      int     `json:"size"`
	Rho       int     `json:"rho,omitempty"`
	Optimal   bool    `json:"optimal"`
	Triangles int     `json:"c3"`
	Quads     int     `json:"c4"`
	Slack     int     `json:"slack"`
	Valid     bool    `json:"valid"`
}

func main() {
	n := flag.Int("n", 9, "ring size (>= 3)")
	demandSpec := flag.String("demand", "alltoall",
		"demand: alltoall | lambda:<k> | hub:<node> | neighbors | random:<density>:<seed>")
	asJSON := flag.Bool("json", false, "emit JSON")
	quiet := flag.Bool("quiet", false, "suppress per-cycle listing")
	flag.Parse()

	in, err := parseDemand(*n, *demandSpec)
	if err != nil {
		fatal(err)
	}

	var cv *cyclecover.Covering
	optimal := false
	if *demandSpec == "alltoall" {
		cv, optimal, err = cyclecover.CoverAllToAll(*n)
	} else {
		cv, err = cyclecover.CoverInstance(in)
	}
	if err != nil {
		fatal(err)
	}
	verifyErr := cyclecover.Verify(cv, in)

	if *asJSON {
		out := output{
			N:         *n,
			Demand:    in.Name,
			Size:      cv.Size(),
			Optimal:   optimal,
			Triangles: cv.NumTriangles(),
			Quads:     cv.NumQuads(),
			Slack:     cv.DuplicateSlots(),
			Valid:     verifyErr == nil,
		}
		if *demandSpec == "alltoall" {
			out.Rho = cyclecover.Rho(*n)
		}
		for _, c := range cv.Cycles {
			out.Cycles = append(out.Cycles, c.Vertices())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("demand: %s\n", in.Name)
	fmt.Println(cyclecover.Describe(cv))
	if *demandSpec == "alltoall" {
		fmt.Printf("rho(%d) = %d, optimal certified: %v\n", *n, cyclecover.Rho(*n), optimal)
	}
	if verifyErr != nil {
		fmt.Printf("VERIFY FAILED: %v\n", verifyErr)
		os.Exit(1)
	}
	fmt.Println("verified: every request covered, every cycle DRC-routable")
	if !*quiet {
		for i, c := range cv.Cycles {
			fmt.Printf("  cycle %3d: %v\n", i, c)
		}
	}
}

func parseDemand(n int, spec string) (cyclecover.Instance, error) {
	return cyclecover.ParseInstance(n, spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cyclecover:", err)
	os.Exit(1)
}

// Command cyclelint is the repository's static-analysis multichecker:
// it loads the module from source (stdlib-only, no module proxy
// needed) and runs the six cyclecover analyzers over every package,
// enforcing at compile time the invariants the test suite pins at
// runtime:
//
//	detiter        deterministic iteration (no raw map ranges)
//	rngdiscipline  seed-derived randomness only (no time.Now / global rand)
//	noalloc        allocation-free //cyclecover:noalloc hot paths
//	ctxdiscipline  context threading and Ctx-variant coverage
//	docs           package + public-API documentation contract
//	faultpoint     justified //cyclecover:faultpoint on chaos hooks
//
// Usage:
//
//	cyclelint [-root dir] [-only name[,name]] [packages]
//
// Packages default to ./... (the whole module). Exit status: 0 clean,
// 1 findings, 2 load or usage error. CI runs `go run ./cmd/cyclelint
// ./...` as a required step; DESIGN.md §9 documents each analyzer's
// contract and the //cyclecover:* annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/cyclecover/cyclecover/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root directory (default: nearest go.mod at or above cwd)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cyclelint [-root dir] [-only names] [packages]\n\nAnalyzers:\n")
		for _, az := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", az.Name, az.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cyclelint:", err)
			os.Exit(2)
		}
	}
	azs, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclelint:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclelint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclelint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, azs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cyclelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, az := range all {
		byName[az.Name] = az
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		az, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		picked = append(picked, az)
	}
	return picked, nil
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndex(dir, "/")+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == dir || parent == "" {
			return "", fmt.Errorf("no go.mod at or above the working directory; pass -root")
		}
		dir = parent
	}
}

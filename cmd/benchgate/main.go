// Command benchgate enforces the hot-path performance budgets in CI. It
// runs a pinned set of -benchmem benchmarks, parses their allocs/op
// figures — and, for the search benchmarks, the custom nodes/op metric —
// from `go test` output, and diffs the results against the pinned names:
// a missing benchmark (renamed, deleted, or silently skipped) fails the
// gate just as hard as a blown budget, so neither the allocation
// contract nor the search-effort contract can rot by omission.
//
// Budgets are per-metric: MaxAllocs < 0 leaves allocations ungated (the
// exact-search end-to-end benchmarks allocate their solutions), and
// MaxNodes 0 leaves search effort ungated (most benchmarks report no
// nodes/op metric at all). Node counts are deterministic — the exact
// search is pinned to be bit-identical run to run — so a nodes/op
// ceiling is a hard regression tripwire, not a flaky timing threshold.
//
// Usage:
//
//	go run ./cmd/benchgate            # run every pinned gate
//	go run ./cmd/benchgate -list      # print the pinned set and exit
//
// Exit status: 0 all gates hold, 1 any gate violated, 2 a benchmark
// invocation itself failed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// gate pins one benchmark to its budgets. Benchtime uses the fixed-
// iteration "Nx" form so the run cost stays bounded in CI. MaxAllocs is
// the inclusive allocs/op budget, or negative to leave allocations
// ungated; MaxNodes is the inclusive nodes/op budget, or 0 to leave
// search effort ungated.
type gate struct {
	Bench     string // exact benchmark function name
	Package   string // package pattern passed to go test
	Benchtime string // -benchtime value, e.g. "500x"
	MaxAllocs int64  // inclusive allocs/op budget; < 0 = ungated
	MaxNodes  int64  // inclusive nodes/op budget; 0 = ungated
}

// gates mirrors the hot-path contract documented in DESIGN.md: the
// verify, exact-search inner branch, sweep-evaluate, and warm
// delta-repair paths must stay allocation-free, and the symmetry-reduced
// exact engine must keep its search-effort wins (node ceilings from
// EXPERIMENTS.md §I, measured +10% headroom).
var gates = []gate{
	{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", Benchtime: "500x", MaxAllocs: 0},
	{Bench: "BenchmarkGeneralVerify", Package: "./internal/cover", Benchtime: "500x", MaxAllocs: 0},
	{Bench: "BenchmarkSCCCoverCubic", Package: "./internal/construct", Benchtime: "3x", MaxAllocs: -1},
	{Bench: "BenchmarkExactInnerBranch", Package: "./internal/construct", Benchtime: "5x", MaxAllocs: 0},
	{Bench: "BenchmarkSweepEvaluate", Package: "./internal/survive", Benchtime: "2000x", MaxAllocs: 0},
	{Bench: "BenchmarkDeltaRepairWarm", Package: "./internal/construct", Benchtime: "500x", MaxAllocs: 0},
	{Bench: "BenchmarkExact", Package: ".", Benchtime: "1x", MaxAllocs: -1, MaxNodes: 850},
	{Bench: "BenchmarkExactCert", Package: ".", Benchtime: "1x", MaxAllocs: -1, MaxNodes: 7_000_000},
}

// result is one parsed benchmark line; each metric is flagged by
// presence, since plain benchmarks report no nodes/op and runs without
// -benchmem report no allocs/op.
type result struct {
	Name      string // base name: sub-benchmark path and -P suffix stripped
	Allocs    int64
	HasAllocs bool
	Nodes     int64
	HasNodes  bool
}

func main() {
	list := flag.Bool("list", false, "print the pinned gate set and exit")
	flag.Parse()
	if *list {
		for _, g := range gates {
			budgets := ""
			if g.MaxAllocs >= 0 {
				budgets += fmt.Sprintf("\tmax %d allocs/op", g.MaxAllocs)
			}
			if g.MaxNodes > 0 {
				budgets += fmt.Sprintf("\tmax %d nodes/op", g.MaxNodes)
			}
			fmt.Printf("%s\t%s\t-benchtime %s%s\n", g.Bench, g.Package, g.Benchtime, budgets)
		}
		return
	}
	var problems []string
	for _, g := range gates {
		out, err := runGate(g)
		os.Stdout.Write(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", g.Bench, err)
			os.Exit(2)
		}
		problems = append(problems, check(g, parseResults(out))...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "FAIL: "+p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gates hold\n", len(gates))
}

// runGate invokes go test for one pinned benchmark and returns its
// combined output.
func runGate(g gate) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+g.Bench+"$", "-benchmem", "-benchtime", g.Benchtime, g.Package)
	return cmd.CombinedOutput()
}

// check diffs the parsed results against one gate's pinned name and
// budgets, returning human-readable violations. A gated metric that the
// benchmark stopped reporting is itself a violation: silence must not
// read as compliance.
func check(g gate, results []result) []string {
	var problems []string
	seen := false
	for _, r := range results {
		if r.Name != g.Bench {
			continue
		}
		seen = true
		if g.MaxAllocs >= 0 {
			switch {
			case !r.HasAllocs:
				problems = append(problems, fmt.Sprintf("%s (%s): no allocs/op figure in its result line",
					g.Bench, g.Package))
			case r.Allocs > g.MaxAllocs:
				problems = append(problems, fmt.Sprintf("%s (%s): %d allocs/op, budget %d",
					g.Bench, g.Package, r.Allocs, g.MaxAllocs))
			}
		}
		if g.MaxNodes > 0 {
			switch {
			case !r.HasNodes:
				problems = append(problems, fmt.Sprintf("%s (%s): no nodes/op metric in its result line",
					g.Bench, g.Package))
			case r.Nodes > g.MaxNodes:
				problems = append(problems, fmt.Sprintf("%s (%s): %d nodes/op, budget %d",
					g.Bench, g.Package, r.Nodes, g.MaxNodes))
			}
		}
	}
	if !seen {
		problems = append(problems, fmt.Sprintf("%s (%s): no result line — benchmark missing or renamed",
			g.Bench, g.Package))
	}
	return problems
}

// parseResults extracts every benchmark line carrying an allocs/op or
// nodes/op figure. The parse keys off field positions rather than column
// offsets: each count is the field immediately before its unit, and the
// benchmark name is field 0 with any sub-benchmark path and GOMAXPROCS
// suffix stripped. nodes/op arrives via b.ReportMetric as a float
// ("752244 nodes/op" or "1.25e+07 nodes/op"), so it parses as a float
// and rounds. Lines that do not fit (headers, PASS/ok trailers, partial
// output) are skipped.
func parseResults(out []byte) []result {
	var results []result
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: baseName(fields[0])}
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "allocs/op":
				if v, err := strconv.ParseInt(fields[i-1], 10, 64); err == nil {
					r.Allocs, r.HasAllocs = v, true
				}
			case "nodes/op":
				if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
					r.Nodes, r.HasNodes = int64(v+0.5), true
				}
			}
		}
		if r.HasAllocs || r.HasNodes {
			results = append(results, r)
		}
	}
	return results
}

// baseName reduces a reported benchmark name to its function name:
// sub-benchmark segments after "/" and the "-P" GOMAXPROCS suffix are
// dropped.
func baseName(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

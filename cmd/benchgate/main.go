// Command benchgate enforces the hot-path allocation budget in CI. It
// runs a pinned set of -benchmem benchmarks — the same four the former
// awk gate watched — parses their allocs/op figures from `go test`
// output, and diffs the results against the pinned names: a missing
// benchmark (renamed, deleted, or silently skipped) fails the gate just
// as hard as a nonzero allocation count, so the budget cannot rot by
// omission.
//
// Usage:
//
//	go run ./cmd/benchgate            # run every pinned gate
//	go run ./cmd/benchgate -list      # print the pinned set and exit
//
// Exit status: 0 all gates hold, 1 any gate violated, 2 a benchmark
// invocation itself failed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// gate pins one benchmark to an allocation budget. Benchtime uses the
// fixed-iteration "Nx" form so the run cost stays bounded in CI.
type gate struct {
	Bench     string // exact benchmark function name
	Package   string // package pattern passed to go test
	Benchtime string // -benchtime value, e.g. "500x"
	MaxAllocs int64  // inclusive allocs/op budget
}

// gates mirrors the hot-path contract documented in DESIGN.md: the
// verify, exact-search inner branch, sweep-evaluate, and warm
// delta-repair paths must stay allocation-free.
var gates = []gate{
	{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", Benchtime: "500x", MaxAllocs: 0},
	{Bench: "BenchmarkExactInnerBranch", Package: "./internal/construct", Benchtime: "5x", MaxAllocs: 0},
	{Bench: "BenchmarkSweepEvaluate", Package: "./internal/survive", Benchtime: "2000x", MaxAllocs: 0},
	{Bench: "BenchmarkDeltaRepairWarm", Package: "./internal/construct", Benchtime: "500x", MaxAllocs: 0},
}

// result is one parsed benchmark line that reported an allocs/op
// figure.
type result struct {
	Name   string // base name: sub-benchmark path and -P suffix stripped
	Allocs int64
}

func main() {
	list := flag.Bool("list", false, "print the pinned gate set and exit")
	flag.Parse()
	if *list {
		for _, g := range gates {
			fmt.Printf("%s\t%s\t-benchtime %s\tmax %d allocs/op\n", g.Bench, g.Package, g.Benchtime, g.MaxAllocs)
		}
		return
	}
	var problems []string
	for _, g := range gates {
		out, err := runGate(g)
		os.Stdout.Write(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", g.Bench, err)
			os.Exit(2)
		}
		problems = append(problems, check(g, parseResults(out))...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "FAIL: "+p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gates hold\n", len(gates))
}

// runGate invokes go test for one pinned benchmark and returns its
// combined output.
func runGate(g gate) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+g.Bench+"$", "-benchmem", "-benchtime", g.Benchtime, g.Package)
	return cmd.CombinedOutput()
}

// check diffs the parsed results against one gate's pinned name and
// budget, returning human-readable violations.
func check(g gate, results []result) []string {
	var problems []string
	seen := false
	for _, r := range results {
		if r.Name != g.Bench {
			continue
		}
		seen = true
		if r.Allocs > g.MaxAllocs {
			problems = append(problems, fmt.Sprintf("%s (%s): %d allocs/op, budget %d",
				g.Bench, g.Package, r.Allocs, g.MaxAllocs))
		}
	}
	if !seen {
		problems = append(problems, fmt.Sprintf("%s (%s): no allocs/op line — benchmark missing or renamed",
			g.Bench, g.Package))
	}
	return problems
}

// parseResults extracts every benchmark line carrying an allocs/op
// figure. The parse keys off field positions rather than column
// offsets: the allocation count is the field immediately before the
// trailing "allocs/op" unit, and the benchmark name is field 0 with
// any sub-benchmark path and GOMAXPROCS suffix stripped. Lines that do
// not fit (headers, PASS/ok trailers, partial output) are skipped.
func parseResults(out []byte) []result {
	var results []result
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || fields[len(fields)-1] != "allocs/op" {
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		allocs, err := strconv.ParseInt(fields[len(fields)-2], 10, 64)
		if err != nil {
			continue
		}
		results = append(results, result{Name: baseName(fields[0]), Allocs: allocs})
	}
	return results
}

// baseName reduces a reported benchmark name to its function name:
// sub-benchmark segments after "/" and the "-P" GOMAXPROCS suffix are
// dropped.
func baseName(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

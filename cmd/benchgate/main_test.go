package main

import (
	"strings"
	"testing"
)

// sampleOutput is a realistic go test -benchmem transcript: headers,
// a plain result, a sub-benchmark, a noise line, and the trailers.
const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/cyclecover/cyclecover/internal/cover
cpu: fake
BenchmarkVerifyWarm-8   	     500	      2104 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerifyWarm/n=19-8	     500	      4110 ns/op	      16 B/op	       2 allocs/op
some unrelated line with allocs/op mentioned but wrong shape
BenchmarkOther-8        	       5	 123456789 ns/op	    1024 B/op	      37 allocs/op
PASS
ok  	github.com/cyclecover/cyclecover/internal/cover	1.234s
`

func TestParseResults(t *testing.T) {
	got := parseResults([]byte(sampleOutput))
	want := []result{
		{Name: "BenchmarkVerifyWarm", Allocs: 0},
		{Name: "BenchmarkVerifyWarm", Allocs: 2},
		{Name: "BenchmarkOther", Allocs: 37},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseResultsSkipsMalformed(t *testing.T) {
	malformed := strings.Join([]string{
		"BenchmarkBroken-8 500 2 ns/op NaN allocs/op", // non-numeric count
		"allocs/op",                     // too short
		"NotABenchmark 1 0 allocs/op",   // name without Benchmark prefix
		"BenchmarkTail-8 1 7 allocs/op", // valid minimal shape
	}, "\n")
	got := parseResults([]byte(malformed))
	if len(got) != 1 || got[0] != (result{Name: "BenchmarkTail", Allocs: 7}) {
		t.Fatalf("parsed %v, want only BenchmarkTail=7", got)
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkVerifyWarm-8":        "BenchmarkVerifyWarm",
		"BenchmarkVerifyWarm":          "BenchmarkVerifyWarm",
		"BenchmarkVerifyWarm/n=19-8":   "BenchmarkVerifyWarm",
		"BenchmarkSweep/k=2/dense-16":  "BenchmarkSweep",
		"BenchmarkOdd-name":            "BenchmarkOdd-name", // suffix not numeric
		"BenchmarkDeltaRepairWarm-256": "BenchmarkDeltaRepairWarm",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckPassesWithinBudget(t *testing.T) {
	g := gate{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", MaxAllocs: 0}
	problems := check(g, []result{{Name: "BenchmarkVerifyWarm", Allocs: 0}})
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCheckFlagsNonzeroAllocs(t *testing.T) {
	g := gate{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", MaxAllocs: 0}
	problems := check(g, []result{{Name: "BenchmarkVerifyWarm", Allocs: 3}})
	if len(problems) != 1 || !strings.Contains(problems[0], "3 allocs/op") {
		t.Fatalf("problems = %v, want one nonzero-allocs violation", problems)
	}
}

func TestCheckFlagsMissingBenchmark(t *testing.T) {
	g := gate{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", MaxAllocs: 0}
	problems := check(g, []result{{Name: "BenchmarkSomethingElse", Allocs: 0}})
	if len(problems) != 1 || !strings.Contains(problems[0], "missing or renamed") {
		t.Fatalf("problems = %v, want one missing-benchmark violation", problems)
	}
}

// TestGatesMatchPinnedContract guards the pinned set itself: the four
// hot paths with a zero budget. Editing the set is a deliberate act
// that must touch this test too.
func TestGatesMatchPinnedContract(t *testing.T) {
	want := map[string]string{
		"BenchmarkVerifyWarm":       "./internal/cover",
		"BenchmarkExactInnerBranch": "./internal/construct",
		"BenchmarkSweepEvaluate":    "./internal/survive",
		"BenchmarkDeltaRepairWarm":  "./internal/construct",
	}
	if len(gates) != len(want) {
		t.Fatalf("%d gates pinned, want %d", len(gates), len(want))
	}
	for _, g := range gates {
		pkg, ok := want[g.Bench]
		if !ok {
			t.Errorf("unexpected gate %q", g.Bench)
			continue
		}
		if g.Package != pkg {
			t.Errorf("%s pinned to %s, want %s", g.Bench, g.Package, pkg)
		}
		if g.MaxAllocs != 0 {
			t.Errorf("%s budget %d, want 0", g.Bench, g.MaxAllocs)
		}
		if !strings.HasSuffix(g.Benchtime, "x") {
			t.Errorf("%s benchtime %q, want fixed-iteration Nx form", g.Bench, g.Benchtime)
		}
	}
}

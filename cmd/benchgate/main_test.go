package main

import (
	"strings"
	"testing"
)

// sampleOutput is a realistic go test -benchmem transcript: headers, a
// plain result, a sub-benchmark, a search benchmark carrying the custom
// nodes/op metric, a noise line, and the trailers.
const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/cyclecover/cyclecover/internal/cover
cpu: fake
BenchmarkVerifyWarm-8   	     500	      2104 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerifyWarm/n=19-8	     500	      4110 ns/op	      16 B/op	       2 allocs/op
some unrelated line with allocs/op mentioned but wrong shape
BenchmarkExact-8        	      18	  66870146 ns/op	    752244 nodes/op	  145512 B/op	     743 allocs/op
BenchmarkExactCert      	       1	4900000000 ns/op	 4.0e+07 nodes/op	    1024 B/op	      37 allocs/op
PASS
ok  	github.com/cyclecover/cyclecover/internal/cover	1.234s
`

func TestParseResults(t *testing.T) {
	got := parseResults([]byte(sampleOutput))
	want := []result{
		{Name: "BenchmarkVerifyWarm", Allocs: 0, HasAllocs: true},
		{Name: "BenchmarkVerifyWarm", Allocs: 2, HasAllocs: true},
		{Name: "BenchmarkExact", Allocs: 743, HasAllocs: true, Nodes: 752244, HasNodes: true},
		{Name: "BenchmarkExactCert", Allocs: 37, HasAllocs: true, Nodes: 40_000_000, HasNodes: true},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseResultsSkipsMalformed(t *testing.T) {
	malformed := strings.Join([]string{
		"BenchmarkBroken-8 500 2 ns/op NaN allocs/op", // non-numeric count
		"allocs/op",                   // too short
		"NotABenchmark 1 0 allocs/op", // name without Benchmark prefix
		"BenchmarkNodesOnly-8 1 2 ns/op 1500 nodes/op", // nodes metric without -benchmem
		"BenchmarkTail-8 1 7 allocs/op",                // valid minimal shape
		"BenchmarkBadNodes-8 1 2 ns/op wat nodes/op",   // non-numeric nodes, no allocs
	}, "\n")
	got := parseResults([]byte(malformed))
	want := []result{
		{Name: "BenchmarkNodesOnly", Nodes: 1500, HasNodes: true},
		{Name: "BenchmarkTail", Allocs: 7, HasAllocs: true},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkVerifyWarm-8":        "BenchmarkVerifyWarm",
		"BenchmarkVerifyWarm":          "BenchmarkVerifyWarm",
		"BenchmarkVerifyWarm/n=19-8":   "BenchmarkVerifyWarm",
		"BenchmarkSweep/k=2/dense-16":  "BenchmarkSweep",
		"BenchmarkOdd-name":            "BenchmarkOdd-name", // suffix not numeric
		"BenchmarkDeltaRepairWarm-256": "BenchmarkDeltaRepairWarm",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckPassesWithinBudget(t *testing.T) {
	g := gate{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", MaxAllocs: 0}
	problems := check(g, []result{{Name: "BenchmarkVerifyWarm", Allocs: 0, HasAllocs: true}})
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCheckFlagsNonzeroAllocs(t *testing.T) {
	g := gate{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", MaxAllocs: 0}
	problems := check(g, []result{{Name: "BenchmarkVerifyWarm", Allocs: 3, HasAllocs: true}})
	if len(problems) != 1 || !strings.Contains(problems[0], "3 allocs/op") {
		t.Fatalf("problems = %v, want one nonzero-allocs violation", problems)
	}
}

func TestCheckFlagsMissingBenchmark(t *testing.T) {
	g := gate{Bench: "BenchmarkVerifyWarm", Package: "./internal/cover", MaxAllocs: 0}
	problems := check(g, []result{{Name: "BenchmarkSomethingElse", Allocs: 0, HasAllocs: true}})
	if len(problems) != 1 || !strings.Contains(problems[0], "missing or renamed") {
		t.Fatalf("problems = %v, want one missing-benchmark violation", problems)
	}
}

// TestCheckNodesBudget exercises the nodes/op contract the same way the
// alloc contract is exercised: within budget passes, over budget fails,
// and a gated benchmark that stopped reporting the metric fails too.
func TestCheckNodesBudget(t *testing.T) {
	g := gate{Bench: "BenchmarkExactCert", Package: ".", MaxAllocs: -1, MaxNodes: 1000}

	ok := []result{{Name: "BenchmarkExactCert", Allocs: 99, HasAllocs: true, Nodes: 1000, HasNodes: true}}
	if problems := check(g, ok); len(problems) != 0 {
		t.Fatalf("within-budget problems: %v (allocs must be ungated at MaxAllocs<0)", problems)
	}

	over := []result{{Name: "BenchmarkExactCert", Nodes: 1001, HasNodes: true}}
	if problems := check(g, over); len(problems) != 1 || !strings.Contains(problems[0], "1001 nodes/op") {
		t.Fatalf("problems = %v, want one over-node-budget violation", problems)
	}

	silent := []result{{Name: "BenchmarkExactCert", Allocs: 0, HasAllocs: true}}
	if problems := check(g, silent); len(problems) != 1 || !strings.Contains(problems[0], "no nodes/op metric") {
		t.Fatalf("problems = %v, want one missing-metric violation", problems)
	}
}

// TestGatesMatchPinnedContract guards the pinned set itself: the five
// allocation-free hot paths (including the general-topology walk
// verifier), the cubic scc pipeline smoke, and the two node-budgeted
// search benchmarks. Editing the set is a deliberate act that must
// touch this test too.
func TestGatesMatchPinnedContract(t *testing.T) {
	type budget struct {
		pkg    string
		allocs int64
		nodes  bool // whether a nodes/op ceiling must be pinned
	}
	want := map[string]budget{
		"BenchmarkVerifyWarm":       {pkg: "./internal/cover"},
		"BenchmarkGeneralVerify":    {pkg: "./internal/cover"},
		"BenchmarkSCCCoverCubic":    {pkg: "./internal/construct", allocs: -1},
		"BenchmarkExactInnerBranch": {pkg: "./internal/construct"},
		"BenchmarkSweepEvaluate":    {pkg: "./internal/survive"},
		"BenchmarkDeltaRepairWarm":  {pkg: "./internal/construct"},
		"BenchmarkExact":            {pkg: ".", allocs: -1, nodes: true},
		"BenchmarkExactCert":        {pkg: ".", allocs: -1, nodes: true},
	}
	if len(gates) != len(want) {
		t.Fatalf("%d gates pinned, want %d", len(gates), len(want))
	}
	for _, g := range gates {
		w, ok := want[g.Bench]
		if !ok {
			t.Errorf("unexpected gate %q", g.Bench)
			continue
		}
		if g.Package != w.pkg {
			t.Errorf("%s pinned to %s, want %s", g.Bench, g.Package, w.pkg)
		}
		if w.allocs < 0 {
			if g.MaxAllocs >= 0 {
				t.Errorf("%s allocs budget %d, want ungated (<0)", g.Bench, g.MaxAllocs)
			}
		} else if g.MaxAllocs != w.allocs {
			t.Errorf("%s allocs budget %d, want %d", g.Bench, g.MaxAllocs, w.allocs)
		}
		if w.nodes != (g.MaxNodes > 0) {
			t.Errorf("%s nodes ceiling %d, want pinned=%v", g.Bench, g.MaxNodes, w.nodes)
		}
		if !strings.HasSuffix(g.Benchtime, "x") {
			t.Errorf("%s benchtime %q, want fixed-iteration Nx form", g.Bench, g.Benchtime)
		}
	}
}

package main

import "testing"

func TestParseLinks(t *testing.T) {
	links, err := parseLinks("3, 7,0")
	if err != nil || len(links) != 3 || links[0] != 3 || links[1] != 7 || links[2] != 0 {
		t.Fatalf("parseLinks = %v, %v", links, err)
	}
	if _, err := parseLinks("3,x"); err == nil {
		t.Fatal("bad link: want error")
	}
	if _, err := parseLinks(""); err == nil {
		t.Fatal("empty spec: want error")
	}
}

// Command wdmsim plans a survivable WDM ring for all-to-all traffic and
// runs failure drills against it.
//
// Usage:
//
//	wdmsim -n 11                 # plan + sweep all single-link failures
//	wdmsim -n 11 -fail 3         # fail one specific link
//	wdmsim -n 11 -fail 3,7       # simultaneous double failure
//	wdmsim -n 9 -double          # exhaustive double-failure sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	n := flag.Int("n", 11, "ring size (>= 3)")
	failSpec := flag.String("fail", "", "comma-separated links to fail (default: sweep all single failures)")
	double := flag.Bool("double", false, "run the exhaustive double-failure sweep")
	flag.Parse()

	cv, optimal, err := cyclecover.CoverAllToAll(*n)
	if err != nil {
		fatal(err)
	}
	in := cyclecover.AllToAll(*n)
	nw, err := cyclecover.PlanWDM(cv, in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("planned C_%d: %d subnetworks (optimal=%v), %d wavelengths, %d ADMs, max transit %d, cost %.1f\n",
		*n, cv.Size(), optimal, nw.Wavelengths(), nw.ADMCount(), nw.MaxTransit(),
		cyclecover.DefaultCostModel().Cost(nw))

	sim := cyclecover.NewSimulator(nw)

	if *failSpec != "" {
		links, err := parseLinks(*failSpec)
		if err != nil {
			fatal(err)
		}
		rep, err := sim.Fail(links...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("failed links %v: %d unaffected, %d rerouted, %d lost (restoration %.4f)\n",
			rep.Failed, rep.Unaffected, len(rep.Affected), len(rep.Lost), rep.RestorationRate())
		for _, rr := range rep.Affected {
			fmt.Printf("  reroute %v: subnetwork %d, working %d links → spare %d links\n",
				rr.Request, rr.Subnetwork, rr.WorkingLen, rr.SpareLen)
		}
		for _, lost := range rep.Lost {
			fmt.Printf("  LOST %v\n", lost)
		}
		return
	}

	sweep, err := sim.SingleFailureSweep()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("single-failure sweep over %d links: all restored = %v\n", sweep.Links, sweep.AllRestored)
	fmt.Printf("  %d reroutes total, worst link %d affects %d requests, max spare path %d links\n",
		sweep.TotalAffected, sweep.WorstLink, sweep.WorstAffected, sweep.MaxSpareLen)

	if *double {
		mean, worst, err := sim.DoubleFailureSweep()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("double-failure sweep: mean restoration %.4f, worst %.4f\n", mean, worst)
	}
}

func parseLinks(spec string) ([]cyclecover.Link, error) {
	var links []cyclecover.Link
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad link %q", part)
		}
		links = append(links, cyclecover.Link(v))
	}
	return links, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdmsim:", err)
	os.Exit(1)
}

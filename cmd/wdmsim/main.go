// Command wdmsim plans a survivable WDM ring and drives k-failure
// drills against it on the parallel sweep engine: exhaustive sweeps for
// k ≤ 2, deterministically sampled sweeps for k ≥ 3, all through the
// same cached planning path the cycled service serves (POST /simulate).
//
// Usage:
//
//	wdmsim -n 11                      # plan + sweep all single-link failures
//	wdmsim -n 11 -fail 3              # fail one specific link
//	wdmsim -n 11 -fail 3,7            # simultaneous double failure
//	wdmsim -n 9 -k 2                  # exhaustive double-failure sweep
//	wdmsim -n 16 -k 3 -sample 500     # seeded sample of triple failures
//	wdmsim -n 12 -demand hub:0 -strategy greedy -timeout 2s
//
// -seed reproduces a sampled sweep exactly; -workers bounds the sweep's
// parallelism (the aggregate report is identical for every worker
// count); -timeout bounds planning and sweeping together, mirroring the
// service's -plan-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	n := flag.Int("n", 11, "ring size (>= 3)")
	demand := flag.String("demand", "alltoall", "demand spec: alltoall | lambda:<k> | hub:<node> | neighbors | random:<density>:<seed>")
	strategy := flag.String("strategy", "", "construction strategy (see cyclecover.Strategies); empty = default pipeline")
	failSpec := flag.String("fail", "", "comma-separated links to fail (skips the sweep)")
	k := flag.Int("k", 1, "failure multiplicity per sweep scenario")
	sample := flag.Int("sample", 0, "max sampled scenarios for k >= 3 (0 = library default)")
	seed := flag.Int64("seed", 0, "scenario sampler seed (k >= 3)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "deadline for planning + sweeping (0 = none)")
	flag.Parse()

	in, err := cyclecover.ParseInstance(*n, *demand)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []cyclecover.PlannerOption
	if *strategy != "" {
		opts = append(opts, cyclecover.WithStrategy(*strategy))
	}
	planner := cyclecover.NewPlanner(opts...)

	if *failSpec != "" {
		links, err := parseLinks(*failSpec)
		if err != nil {
			fatal(err)
		}
		nw, err := planner.PlanWDMCtx(ctx, in)
		if err != nil {
			fatal(err)
		}
		printPlan(*n, nw)
		rep, err := cyclecover.NewSimulator(nw).Fail(links...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("failed links %v: %d unaffected, %d rerouted, %d lost (restoration %.4f)\n",
			rep.Failed, rep.Unaffected, len(rep.Affected), len(rep.Lost), rep.RestorationRate())
		for _, rr := range rep.Affected {
			fmt.Printf("  reroute %v: subnetwork %d, working %d links → spare %d links\n",
				rr.Request, rr.Subnetwork, rr.WorkingLen, rr.SpareLen)
		}
		for _, lost := range rep.Lost {
			fmt.Printf("  LOST %v\n", lost)
		}
		return
	}

	sim, err := planner.SimulateCtx(ctx, in, cyclecover.SweepOptions{
		K:       *k,
		Sample:  *sample,
		Seed:    *seed,
		Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}
	printPlan(*n, sim.Network)
	printSweep(sim.Sweep)
}

func printPlan(n int, nw *cyclecover.Network) {
	fmt.Printf("planned C_%d: %d subnetworks, %d wavelengths, %d ADMs, max transit %d, cost %.1f\n",
		n, len(nw.Subnets), nw.Wavelengths(), nw.ADMCount(), nw.MaxTransit(),
		cyclecover.DefaultCostModel().Cost(nw))
}

func printSweep(sw cyclecover.SweepResult) {
	scope := "exhaustive"
	switch {
	case sw.Sampled:
		scope = fmt.Sprintf("sampled %d of %d (seed %d)", sw.Planned, sw.Scenarios, sw.Seed)
	case !sw.Complete:
		scope = fmt.Sprintf("budget-cut to %d of %d", sw.Planned, sw.Scenarios)
	}
	fmt.Printf("%d-failure sweep, %s: all restored = %v\n", sw.K, scope, sw.AllRestored)
	fmt.Printf("  restoration mean %.4f worst %.4f; %d reroutes, %d lost over %d scenarios\n",
		sw.MeanRestoration, sw.WorstRestoration, sw.TotalAffected, sw.TotalLost, sw.Evaluated)
	fmt.Printf("  heaviest reroute load: scenario %v affects %d requests; max spare path %d links\n",
		sw.MostAffected.Links, sw.MostAffected.Affected, sw.MaxSpareLen)
	for _, worst := range sw.Worst {
		fmt.Printf("  worst case: links %v lose %d of %d demands (rate %.4f)\n",
			worst.Links, worst.Lost, worst.Lost+worst.Affected+worst.Unaffected, worst.Rate)
	}
	if len(sw.Critical) > 0 {
		parts := make([]string, 0, len(sw.Critical))
		for _, c := range sw.Critical {
			parts = append(parts, fmt.Sprintf("%d(%d)", c.Link, c.LostDemands))
		}
		fmt.Printf("  critical links (lost demands): %s\n", strings.Join(parts, " "))
	}
}

func parseLinks(spec string) ([]cyclecover.Link, error) {
	var links []cyclecover.Link
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad link %q", part)
		}
		links = append(links, cyclecover.Link(v))
	}
	return links, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdmsim:", err)
	os.Exit(1)
}

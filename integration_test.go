package cyclecover

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/cover"
	"github.com/cyclecover/cyclecover/internal/graph"
	"github.com/cyclecover/cyclecover/internal/ring"
	"github.com/cyclecover/cyclecover/internal/routing"
)

// These are the cross-module property and integration tests: end-to-end
// pipelines and invariants that span packages.

// TestEndToEndPipeline runs the full stack — construct → verify → plan →
// failure sweep → capacity — for a spread of sizes of both parities.
func TestEndToEndPipeline(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9, 13, 16, 22, 25} {
		cv, _, err := CoverAllToAll(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		in := AllToAll(n)
		if err := Verify(cv, in); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		nw, err := PlanWDM(cv, in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sweep, err := NewSimulator(nw).Sweep(SweepOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !sweep.AllRestored {
			t.Fatalf("n=%d: single-failure survivability violated", n)
		}
		capRep, err := nw.Capacity()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(capRep.Overfilled) != 0 {
			t.Fatalf("n=%d: working channel overfilled", n)
		}
	}
}

// TestPropertyOddPartition: for random odd n, the Theorem 1 covering is a
// partition into C3/C4 routed along short arcs with count and composition
// from the closed forms.
func TestPropertyOddPartition(t *testing.T) {
	f := func(seed uint8) bool {
		n := 3 + 2*(int(seed)%40) // odd in [3, 81]
		cv := construct.Odd(n)
		comp, _ := cover.TheoremComposition(n)
		return cv.Size() == cover.Rho(n) &&
			cv.NumTriangles() == comp.C3 &&
			cv.NumQuads() == comp.C4 &&
			cv.DuplicateSlots() == 0 &&
			cv.Summarize().ShortOnly &&
			cover.Verify(cv, graph.Complete(n)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyVerifierRejectsMutations: deleting any single cycle from an
// optimal odd covering (a partition) must break coverage — the verifier
// is not fooled by near-misses.
func TestPropertyVerifierRejectsMutations(t *testing.T) {
	f := func(seed uint8) bool {
		n := 5 + 2*(int(seed)%15)
		cv := construct.Odd(n)
		victim := int(seed) % cv.Size()
		mut := cv.Clone()
		mut.Cycles = append(mut.Cycles[:victim:victim], mut.Cycles[victim+1:]...)
		return cover.Verify(mut, graph.Complete(n)) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyCycleRoutingAgreement: for random cycles, the structural
// ring-order criterion, the canonical routing and the explicit DRC
// verifier agree.
func TestPropertyCycleRoutingAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		r := ring.MustNew(n)
		k := 3 + rng.Intn(min(n-2, 8))
		verts := rng.Perm(n)[:k]
		c := cover.MustCycle(r, verts...)
		if cover.VerifyDRC(r, c) != nil {
			return false
		}
		tour := routing.Tour(c.Vertices())
		if !tour.IsRingOrdered(r) {
			return false
		}
		routes, ok := tour.CanonicalRouting(r)
		return ok && routing.Disjoint(r, routes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyGreedyAlwaysValid: random sparse demands over random rings
// always yield verified coverings at or above the instance bound.
func TestPropertyGreedyAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(14)
		r := ring.MustNew(n)
		demand := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					demand.AddEdge(u, v)
				}
			}
		}
		if demand.M() == 0 {
			return true
		}
		cv := construct.Greedy(r, demand)
		return cover.Verify(cv, demand) == nil &&
			cv.Size() >= cover.InstanceLowerBound(r, demand)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCLIRoundTripJSON: a covering serialised the way cmd/cyclecover
// emits it decodes back to an equivalent verified covering.
func TestCLIRoundTripJSON(t *testing.T) {
	cv, _, err := CoverAllToAll(10)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cv)
	if err != nil {
		t.Fatal(err)
	}
	var back Covering
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := VerifyOptimalAllToAll(&back); err != nil {
		t.Fatal(err)
	}
}

// TestRhoMonotonicity: ρ is nondecreasing in n except at the odd→even
// steps where the diameter class makes even rings cheaper per pair...
// in fact ρ(2p) ≤ ρ(2p+1) and ρ(2p+1) ≥ ρ(2p); overall ρ(n+2) > ρ(n)
// within each parity class. Check both.
func TestRhoMonotonicity(t *testing.T) {
	for n := 3; n <= 300; n++ {
		if cover.Rho(n+2) <= cover.Rho(n) {
			t.Fatalf("ρ not increasing within parity at n=%d", n)
		}
	}
	for p := 2; p <= 150; p++ {
		if cover.Rho(2*p) > cover.Rho(2*p+1) {
			t.Fatalf("ρ(2p) should not exceed ρ(2p+1) at p=%d", p)
		}
	}
}

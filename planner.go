package cyclecover

import (
	"runtime"
	"sync"

	"github.com/cyclecover/cyclecover/internal/cache"
)

// Planner is the cached planning facade: the same memoized path the
// cycled service runs, exposed to library callers. Repeated requests for
// the same instance signature (ring size, demand class, options) are
// served from an LRU-bounded cache of verified results, and concurrent
// first requests for one signature collapse onto a single computation.
//
// A Planner is safe for concurrent use. Coverings it returns are private
// clones — callers may mutate them freely — while returned *Network
// values are shared and must be treated as read-only. The zero Planner is
// not usable; call NewPlanner.
type Planner struct {
	plans *cache.Plans
}

// CacheStats snapshots a Planner's cache counters.
type CacheStats = cache.PlansStats

// PlannerOption configures NewPlanner.
type PlannerOption func(*plannerConfig)

type plannerConfig struct {
	capacity int
}

// WithCacheSize bounds each of the planner's stores (coverings, networks)
// to n entries; n ≤ 0 selects the default.
func WithCacheSize(n int) PlannerOption {
	return func(c *plannerConfig) { c.capacity = n }
}

// NewPlanner returns a planner with an empty cache.
func NewPlanner(opts ...PlannerOption) *Planner {
	var cfg plannerConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Planner{plans: cache.New(cfg.capacity)}
}

// CoverAllToAll is the cached CoverAllToAll: identical results, but the
// construction runs once per ring size for the planner's lifetime.
func (p *Planner) CoverAllToAll(n int) (cv *Covering, optimal bool, err error) {
	res, _, err := p.plans.CoverAllToAll(n, cache.Options{})
	if err != nil {
		return nil, false, err
	}
	return res.Covering, res.Optimal, nil
}

// CoverInstance is the cached CoverInstance. Beyond caching it also
// upgrades uniform λK_n demands to the λ-composition constructor rather
// than the generic greedy path.
func (p *Planner) CoverInstance(in Instance) (*Covering, error) {
	res, _, err := p.plans.Cover(in, cache.Options{})
	if err != nil {
		return nil, err
	}
	return res.Covering, nil
}

// PlanWDM returns the cached WDM design for the instance, constructing
// the covering (also cached) when needed. The returned network is shared:
// treat it as read-only.
func (p *Planner) PlanWDM(in Instance) (*Network, error) {
	nw, _, err := p.plans.Network(in, cache.Options{})
	return nw, err
}

// CacheStats returns the planner's cache counters.
func (p *Planner) CacheStats() CacheStats { return p.plans.Stats() }

// PlanManyResult is one instance's outcome from PlanMany. Exactly one of
// Err or the (Covering, Network) pair is meaningful; Covering is the
// caller's private clone, Network is shared and read-only.
type PlanManyResult struct {
	Covering *Covering
	Network  *Network
	Err      error
}

// PlanMany plans a heterogeneous batch of instances through the cache
// with a bounded worker pool, returning results in input order. Repeated
// or concurrent duplicates of one signature cost a single construction
// (the cache single-flights them), so bulk workloads with overlapping
// instance classes scale with the number of distinct signatures, not the
// batch size. workers ≤ 0 selects GOMAXPROCS. A zero-value instance in
// the batch yields an error in its slot, never a panic, and does not
// affect the other slots.
func (p *Planner) PlanMany(ins []Instance, workers int) []PlanManyResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	out := make([]PlanManyResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = p.planOne(ins[i])
			}
		}()
	}
	for i := range ins {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// planOne computes one PlanMany slot: cached covering plus cached WDM
// network for the instance.
func (p *Planner) planOne(in Instance) PlanManyResult {
	res, _, err := p.plans.Cover(in, cache.Options{})
	if err != nil {
		return PlanManyResult{Err: err}
	}
	nw, _, err := p.plans.Network(in, cache.Options{})
	if err != nil {
		return PlanManyResult{Err: err}
	}
	return PlanManyResult{Covering: res.Covering, Network: nw}
}

package cyclecover

import (
	"context"
	"runtime"
	"sync"

	"github.com/cyclecover/cyclecover/internal/cache"
	"github.com/cyclecover/cyclecover/internal/construct"
	"github.com/cyclecover/cyclecover/internal/survive"
)

// Planner is the cached planning facade: the same memoized path the
// cycled service runs, exposed to library callers. Repeated requests for
// the same instance signature (ring size, demand class, options) are
// served from an LRU-bounded cache of verified results, and concurrent
// first requests for one signature collapse onto a single computation.
//
// Every planning method has a -Ctx variant taking a context.Context:
// cancellation or a deadline detaches the caller immediately, the
// underlying construction continues for any other waiters, and is itself
// aborted — mid-search, within one branch expansion — when the last
// waiter departs. A cancelled construction never poisons the cache. The
// context-free methods are equivalent to passing context.Background().
//
// A Planner is safe for concurrent use. Coverings it returns are private
// clones — callers may mutate them freely — while returned *Network
// values are shared and must be treated as read-only. The zero Planner is
// not usable; call NewPlanner.
type Planner struct {
	plans *cache.Plans
	opts  cache.Options
}

// CacheStats snapshots a Planner's cache counters.
type CacheStats = cache.PlansStats

// PlannerOption configures NewPlanner.
type PlannerOption func(*plannerConfig)

type plannerConfig struct {
	capacity int
	strategy string
}

// WithCacheSize bounds each of the planner's stores (coverings, networks)
// to n entries; n ≤ 0 selects the default.
func WithCacheSize(n int) PlannerOption {
	return func(c *plannerConfig) { c.capacity = n }
}

// WithStrategy selects the construction strategy for every plan this
// planner produces, by registry name (see Strategies). The empty default
// is the fixed auto pipeline: the paper's machinery for λK_n demands,
// greedy otherwise. An unknown name surfaces as an error from the first
// planning call, not from NewPlanner.
func WithStrategy(name string) PlannerOption {
	return func(c *plannerConfig) { c.strategy = name }
}

// NewPlanner returns a planner with an empty cache.
func NewPlanner(opts ...PlannerOption) *Planner {
	var cfg plannerConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Planner{
		plans: cache.New(cfg.capacity),
		opts:  cache.Options{Strategy: cfg.strategy},
	}
}

// CoverAllToAll is the cached CoverAllToAll: identical results, but the
// construction runs once per ring size for the planner's lifetime.
func (p *Planner) CoverAllToAll(n int) (cv *Covering, optimal bool, err error) {
	return p.CoverAllToAllCtx(context.Background(), n)
}

// CoverAllToAllCtx is CoverAllToAll under a context.
func (p *Planner) CoverAllToAllCtx(ctx context.Context, n int) (cv *Covering, optimal bool, err error) {
	res, _, err := p.plans.CoverAllToAllCtx(ctx, n, p.opts)
	if err != nil {
		return nil, false, err
	}
	return res.Covering, res.Optimal, nil
}

// CoverInstance is the cached CoverInstance. Beyond caching it also
// upgrades uniform λK_n demands to the λ-composition constructor rather
// than the generic greedy path.
func (p *Planner) CoverInstance(in Instance) (*Covering, error) {
	return p.CoverInstanceCtx(context.Background(), in)
}

// CoverInstanceCtx is CoverInstance under a context: a fired ctx aborts
// an in-flight construction (for this caller immediately; for the search
// itself when no other caller still wants it) without poisoning the
// cache.
func (p *Planner) CoverInstanceCtx(ctx context.Context, in Instance) (*Covering, error) {
	res, _, err := p.plans.CoverCtx(ctx, in, p.opts)
	if err != nil {
		return nil, err
	}
	return res.Covering, nil
}

// PlanWDM returns the cached WDM design for the instance, constructing
// the covering (also cached) when needed. The returned network is shared:
// treat it as read-only.
func (p *Planner) PlanWDM(in Instance) (*Network, error) {
	return p.PlanWDMCtx(context.Background(), in)
}

// PlanWDMCtx is PlanWDM under a context.
func (p *Planner) PlanWDMCtx(ctx context.Context, in Instance) (*Network, error) {
	nw, _, err := p.plans.NetworkCtx(ctx, in, p.opts)
	return nw, err
}

// CacheStats returns the planner's cache counters.
func (p *Planner) CacheStats() CacheStats { return p.plans.Stats() }

// SignatureOf returns the canonical cache signature this planner files
// the instance under — the handle PlanDelta accepts as a parent
// reference. It is also the signature the cycled service echoes in its
// /plan responses, so a signature obtained there addresses the same plan
// here (and vice versa) as long as both use the same options.
func (p *Planner) SignatureOf(in Instance) string { return cache.Signature(in, p.opts) }

// PlannedDelta is the outcome of an incremental replan: the child plan
// plus provenance about how it was produced. Covering is the caller's
// private clone; Network is shared with the cache and must be treated as
// read-only.
type PlannedDelta struct {
	// ParentSignature and Signature identify the parent and child plans
	// in the cache; the child is admitted under Signature exactly as a
	// cold plan of the same instance would be.
	ParentSignature string
	Signature       string
	// Child is the derived child instance (parent demand plus delta).
	Child    Instance
	Covering *Covering
	Network  *Network
	// Method names the constructor that produced the covering;
	// "delta-repair" when warm repair converged, a cold constructor's
	// name when the build fell back (or the child was already cached).
	Method string
	// Repaired reports that the covering came from warm-start repair of
	// the parent rather than cold construction.
	Repaired bool
	// Optimal reports that the covering provably has ρ(n) cycles.
	Optimal bool
	// CacheHit reports that the child plan was served from the cache (or
	// joined an in-flight computation) rather than built by this call.
	CacheHit bool
}

// PlanDelta incrementally replans after a bounded instance change: the
// parent plan is fetched from the cache by its canonical signature (see
// SignatureOf), the delta is applied to its demand, and the child is
// planned by warm-starting the repair search from the parent covering —
// falling back to cold construction transparently when repair cannot
// match the cold cost within budget. The child plan is verified, costs
// no more cycles than a cold replan, and is admitted under the child
// instance's own signature with the cache's single-flight semantics, so
// concurrent deltas and cold plans of the same child coalesce.
//
// An unresolvable parent signature fails with an error wrapping
// cache.ErrUnknownParent (plan the parent first); a delta invalid
// against the parent's demand wraps cache.ErrBadDelta.
func (p *Planner) PlanDelta(parentSig string, d Delta) (*PlannedDelta, error) {
	return p.PlanDeltaCtx(context.Background(), parentSig, d)
}

// PlanDeltaCtx is PlanDelta under a context, with the cancellation
// semantics of CoverInstanceCtx for both the repair and any fallback
// construction.
func (p *Planner) PlanDeltaCtx(ctx context.Context, parentSig string, d Delta) (*PlannedDelta, error) {
	dp, err := p.plans.ResolveDelta(parentSig, d)
	if err != nil {
		return nil, err
	}
	res, hit, err := p.plans.CoverDeltaCtx(ctx, dp)
	if err != nil {
		return nil, err
	}
	nw, _, err := p.plans.NetworkCtx(ctx, dp.Child, dp.Opts)
	if err != nil {
		return nil, err
	}
	return &PlannedDelta{
		ParentSignature: dp.ParentSig,
		Signature:       dp.ChildSig,
		Child:           dp.Child,
		Covering:        res.Covering,
		Network:         nw,
		Method:          string(res.Method),
		Repaired:        res.Method == construct.MethodDelta,
		Optimal:         res.Optimal,
		CacheHit:        hit,
	}, nil
}

// PlanManyResult is one instance's outcome from PlanMany. Exactly one of
// Err or the (Covering, Network) pair is meaningful; Covering is the
// caller's private clone, Network is shared and read-only.
type PlanManyResult struct {
	Covering *Covering
	Network  *Network
	Err      error
}

// PlanMany plans a heterogeneous batch of instances through the cache
// with a bounded worker pool, returning results in input order. Repeated
// or concurrent duplicates of one signature cost a single construction
// (the cache single-flights them), so bulk workloads with overlapping
// instance classes scale with the number of distinct signatures, not the
// batch size. workers ≤ 0 selects GOMAXPROCS. A zero-value instance in
// the batch yields an error in its slot, never a panic, and does not
// affect the other slots.
func (p *Planner) PlanMany(ins []Instance, workers int) []PlanManyResult {
	return p.PlanManyCtx(context.Background(), ins, workers)
}

// PlanManyCtx is PlanMany under a context. When ctx fires mid-batch,
// slots that have not started are skipped and report ctx's error
// (context.Canceled for a disconnect, context.DeadlineExceeded for a
// deadline), in-flight slots detach from their constructions (each
// construction is aborted once no caller wants it), and completed slots
// keep their results — the returned slice always has one entry per
// input, in input order.
func (p *Planner) PlanManyCtx(ctx context.Context, ins []Instance, workers int) []PlanManyResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	out := make([]PlanManyResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A fired context skips all remaining work: unstarted
				// slots must not launch new constructions for a caller
				// that has already gone away.
				if err := ctx.Err(); err != nil {
					out[i] = PlanManyResult{Err: err}
					continue
				}
				out[i] = p.planOne(ctx, ins[i])
			}
		}()
	}
	for i := range ins {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Simulation is a survivability analysis of a planned instance: the
// cached WDM design the sweep ran against plus the aggregated k-failure
// sweep report. Network is shared with the cache and must be treated as
// read-only.
type Simulation struct {
	// Network is the plan that was swept (read-only, cache-shared).
	Network *Network
	// Sweep is the aggregated failure-sweep report.
	Sweep SweepResult
}

// Simulate plans the instance through the covering cache and sweeps the
// resulting network with k-failure scenarios: plan once, sweep many.
// Repeated simulations of one instance signature — any k, sample size or
// seed — reuse the cached plan, so only the first call pays for
// construction. See SweepOptions for the sweep contract (exhaustive
// k ≤ 2, deterministic seeded sampling for k ≥ 3, parallel evaluation
// with a worker-count-independent report).
func (p *Planner) Simulate(in Instance, opts SweepOptions) (*Simulation, error) {
	return p.SimulateCtx(context.Background(), in, opts)
}

// SimulateCtx is Simulate under a context. Cancellation or a deadline
// aborts the planning stage exactly like PlanWDMCtx, and the sweep stage
// within one scenario evaluation; an interrupted call returns the
// context's error, never a partial report.
func (p *Planner) SimulateCtx(ctx context.Context, in Instance, opts SweepOptions) (*Simulation, error) {
	nw, _, err := p.plans.NetworkCtx(ctx, in, p.opts)
	if err != nil {
		return nil, err
	}
	sweep, err := survive.NewSimulator(nw).SweepCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &Simulation{Network: nw, Sweep: sweep}, nil
}

// planOne computes one PlanMany slot: cached covering plus cached WDM
// network for the instance.
func (p *Planner) planOne(ctx context.Context, in Instance) PlanManyResult {
	res, _, err := p.plans.CoverCtx(ctx, in, p.opts)
	if err != nil {
		return PlanManyResult{Err: err}
	}
	nw, _, err := p.plans.NetworkCtx(ctx, in, p.opts)
	if err != nil {
		return PlanManyResult{Err: err}
	}
	return PlanManyResult{Covering: res.Covering, Network: nw}
}

package cyclecover

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeCoverAllToAll(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10} {
		cv, optimal, err := CoverAllToAll(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !optimal {
			t.Errorf("n=%d: want optimal", n)
		}
		if err := Verify(cv, AllToAll(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := VerifyOptimalAllToAll(cv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if _, _, err := CoverAllToAll(2); err == nil {
		t.Error("n=2: want error")
	}
}

func TestFacadeRhoAndBounds(t *testing.T) {
	if Rho(9) != 10 || LowerBound(9) != 10 {
		t.Error("ρ(9) = 10")
	}
	comp, ok := TheoremComposition(7)
	if !ok || comp.C3 != 3 || comp.C4 != 3 {
		t.Errorf("TheoremComposition(7) = %v, %v", comp, ok)
	}
}

func TestFacadeCoverInstance(t *testing.T) {
	// Complete instance routes through the optimal machinery.
	cv, err := CoverInstance(AllToAll(7))
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() != Rho(7) {
		t.Errorf("complete instance: %d cycles, want ρ = %d", cv.Size(), Rho(7))
	}
	// Partial demand goes greedy but must verify.
	hub := Hub(9, 0)
	cvh, err := CoverInstance(hub)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cvh, hub); err != nil {
		t.Fatal(err)
	}
	// Uniform multigraph demand routes through the λ-composition.
	lam := LambdaAllToAll(6, 2)
	cvl, err := CoverInstance(lam)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cvl, lam); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHandBuiltCovering(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	cv := NewCovering(r)
	for _, verts := range [][]int{{0, 1, 2, 3}, {0, 1, 3}, {0, 2, 3}} {
		c, err := NewCycle(r, verts...)
		if err != nil {
			t.Fatal(err)
		}
		cv.Add(c)
	}
	if err := VerifyOptimalAllToAll(cv); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePlanAndSimulate(t *testing.T) {
	cv, _, err := CoverAllToAll(8)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := PlanWDM(cv, AllToAll(8))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Wavelengths() != 2*cv.Size() {
		t.Error("two wavelengths per subnetwork")
	}
	if DefaultCostModel().Cost(nw) <= 0 {
		t.Error("cost must be positive")
	}
	sim := NewSimulator(nw)
	sweep, err := sim.Sweep(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.AllRestored {
		t.Error("single-failure survivability violated")
	}
}

func TestFacadeRandomInstanceReproducible(t *testing.T) {
	a, err := RandomInstance(10, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomInstance(10, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests() != b.Requests() {
		t.Error("same seed, same instance")
	}
	if _, err := RandomInstance(10, math.NaN(), 3); err == nil {
		t.Error("NaN density: want error")
	}
}

func TestDescribe(t *testing.T) {
	cv, _, _ := CoverAllToAll(5)
	d := Describe(cv)
	if !strings.Contains(d, "C_5") || !strings.Contains(d, "3 cycles") {
		t.Errorf("Describe = %q", d)
	}
}

module github.com/cyclecover/cyclecover

go 1.24

// Demand study: coverings for the non-uniform traffic patterns the
// machinery must also serve — hubbed access traffic, neighbour-only metro
// traffic, a random enterprise matrix, and the λK_n extension — each built
// and verified through the public API, with the all-to-all optimum as the
// reference point. Every construction runs under a deadline through the
// context-aware API, and the strategy portfolio is raced against the
// default pipeline: the portfolio must reproduce it exactly (the
// determinism rule prefers the closed forms at equal cost), which the
// study asserts per pattern.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	const n = 12

	// A study is interactive work: bound it. The deadline propagates into
	// every construction search — branch-and-bound stops within one node
	// expansion of expiry rather than running to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	random, err := cyclecover.RandomInstance(n, 0.35, 42)
	if err != nil {
		log.Fatal(err)
	}
	patterns := []cyclecover.Instance{
		cyclecover.AllToAll(n),
		cyclecover.Hub(n, 0),
		cyclecover.Neighbors(n),
		random,
		cyclecover.LambdaAllToAll(n, 2),
	}

	fmt.Printf("coverings over C_%d (ρ(%d) = %d for the full exchange)\n\n", n, n, cyclecover.Rho(n))
	fmt.Printf("%-28s  %9s  %7s  %5s  %5s  %9s\n", "demand", "requests", "cycles", "C3", "C4", "portfolio")
	for _, in := range patterns {
		covering, err := cyclecover.CoverInstanceCtx(ctx, in)
		if err != nil {
			log.Fatal(err)
		}
		if err := cyclecover.Verify(covering, in); err != nil {
			log.Fatalf("%s: %v", in.Name, err)
		}
		// The portfolio races closed-form, exact, repair and greedy under
		// one context; its deterministic winner matches the pipeline —
		// not just in size but cycle for cycle.
		raced, err := cyclecover.CoverInstanceStrategy(ctx, in, "portfolio")
		if err != nil {
			log.Fatalf("%s: portfolio: %v", in.Name, err)
		}
		agree := "= pipeline"
		if !sameCycles(raced, covering) {
			agree = fmt.Sprintf("%d cycles!", raced.Size())
		}
		fmt.Printf("%-28s  %9d  %7d  %5d  %5d  %9s\n",
			in.Name, in.Requests(), covering.Size(),
			covering.NumTriangles(), covering.NumQuads(), agree)
	}

	fmt.Println()
	fmt.Println("every covering above re-verified: DRC routing + full coverage ✓")
}

// sameCycles compares two coverings as multisets of canonical cycles.
func sameCycles(a, b *cyclecover.Covering) bool {
	if a.Size() != b.Size() {
		return false
	}
	keys := func(cv *cyclecover.Covering) []string {
		out := make([]string, 0, cv.Size())
		for _, c := range cv.Cycles {
			out = append(out, c.Key())
		}
		sort.Strings(out)
		return out
	}
	ka, kb := keys(a), keys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// Demand study: coverings for the non-uniform traffic patterns the
// machinery must also serve — hubbed access traffic, neighbour-only metro
// traffic, a random enterprise matrix, and the λK_n extension — each built
// and verified through the public API, with the all-to-all optimum as the
// reference point.
package main

import (
	"fmt"
	"log"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	const n = 12

	random, err := cyclecover.RandomInstance(n, 0.35, 42)
	if err != nil {
		log.Fatal(err)
	}
	patterns := []cyclecover.Instance{
		cyclecover.AllToAll(n),
		cyclecover.Hub(n, 0),
		cyclecover.Neighbors(n),
		random,
		cyclecover.LambdaAllToAll(n, 2),
	}

	fmt.Printf("coverings over C_%d (ρ(%d) = %d for the full exchange)\n\n", n, n, cyclecover.Rho(n))
	fmt.Printf("%-28s  %9s  %7s  %5s  %5s\n", "demand", "requests", "cycles", "C3", "C4")
	for _, in := range patterns {
		covering, err := cyclecover.CoverInstance(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := cyclecover.Verify(covering, in); err != nil {
			log.Fatalf("%s: %v", in.Name, err)
		}
		fmt.Printf("%-28s  %9d  %7d  %5d  %5d\n",
			in.Name, in.Requests(), covering.Size(),
			covering.NumTriangles(), covering.NumQuads())
	}

	fmt.Println()
	fmt.Println("every covering above re-verified: DRC routing + full coverage ✓")
}

// Failure drill: exercises the survivability mechanism the paper designs
// for — automatic protection switching inside each subnetwork. The
// program plans an 8-node ring, cuts a fibre, shows every protection
// switch, then sweeps all single failures and (exhaustively) all double
// failures to contrast the guarantee with its limits.
package main

import (
	"fmt"
	"log"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	const n = 8
	covering, _, err := cyclecover.CoverAllToAll(n)
	if err != nil {
		log.Fatal(err)
	}
	network, err := cyclecover.PlanWDM(covering, cyclecover.AllToAll(n))
	if err != nil {
		log.Fatal(err)
	}
	sim := cyclecover.NewSimulator(network)

	fmt.Printf("network: C_%d, %d subnetworks, %d wavelengths\n\n",
		n, covering.Size(), network.Wavelengths())

	// Cut the fibre between nodes 2 and 3 (link 2).
	report, err := sim.Fail(cyclecover.Link(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fibre cut on link 2 (nodes 2-3): %d demands unaffected, %d switched to protection, %d lost\n",
		report.Unaffected, len(report.Affected), len(report.Lost))
	for _, rr := range report.Affected {
		fmt.Printf("  %v: subnetwork %d switches %d-link working path → %d-link spare path\n",
			rr.Request, rr.Subnetwork, rr.WorkingLen, rr.SpareLen)
	}

	sweep, err := sim.SingleFailureSweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d single-link failures restored: %v\n", sweep.Links, sweep.AllRestored)

	mean, worst, err := sim.DoubleFailureSweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double failures (beyond the design guarantee): mean restoration %.1f%%, worst case %.1f%%\n",
		100*mean, 100*worst)
}

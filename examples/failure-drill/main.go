// Failure drill: exercises the survivability mechanism the paper designs
// for — automatic protection switching inside each subnetwork — on the
// cached planning + parallel sweep path. The program plans an 8-node
// ring once through the Planner, cuts a fibre and shows every protection
// switch, then sweeps single, double and sampled triple failures against
// the same cached plan to contrast the guarantee with its limits.
package main

import (
	"fmt"
	"log"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	const n = 8
	planner := cyclecover.NewPlanner()
	instance := cyclecover.AllToAll(n)

	network, err := planner.PlanWDM(instance)
	if err != nil {
		log.Fatal(err)
	}
	sim := cyclecover.NewSimulator(network)
	fmt.Printf("network: C_%d, %d subnetworks, %d wavelengths\n\n",
		n, len(network.Subnets), network.Wavelengths())

	// Cut the fibre between nodes 2 and 3 (link 2).
	report, err := sim.Fail(cyclecover.Link(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fibre cut on link 2 (nodes 2-3): %d demands unaffected, %d switched to protection, %d lost\n",
		report.Unaffected, len(report.Affected), len(report.Lost))
	for _, rr := range report.Affected {
		fmt.Printf("  %v: subnetwork %d switches %d-link working path → %d-link spare path\n",
			rr.Request, rr.Subnetwork, rr.WorkingLen, rr.SpareLen)
	}

	// Sweep k = 1, 2 and sampled k = 3 against the same cached plan:
	// only the first Simulate call constructs anything.
	single, err := planner.Simulate(instance, cyclecover.SweepOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d single-link failures restored: %v\n",
		single.Sweep.Evaluated, single.Sweep.AllRestored)

	double, err := planner.Simulate(instance, cyclecover.SweepOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double failures (beyond the design guarantee): mean restoration %.1f%%, worst case %.1f%%\n",
		100*double.Sweep.MeanRestoration, 100*double.Sweep.WorstRestoration)
	worst := double.Sweep.Worst[0]
	fmt.Printf("  worst pair %v loses %d demands; critical links: %v\n",
		worst.Links, worst.Lost, double.Sweep.Critical)

	triple, err := planner.Simulate(instance, cyclecover.SweepOptions{K: 3, Sample: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled triple failures (%d of %d scenarios, seed 1): mean restoration %.1f%%\n",
		triple.Sweep.Planned, triple.Sweep.Scenarios, 100*triple.Sweep.MeanRestoration)

	stats := planner.CacheStats()
	fmt.Printf("\nplan once, sweep many: %d network construction(s), %d cache hits\n",
		stats.Networks.Misses, stats.Networks.Hits)
}

// Quickstart: build the optimal DRC cycle covering of the all-to-all
// instance on a 9-node optical ring, verify it independently, and print
// the subnetworks — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	const n = 9

	// ρ(n) is the paper's closed form; the constructor achieves it.
	fmt.Printf("Theorem 1 says K_%d over C_%d needs ρ = %d cycles", n, n, cyclecover.Rho(n))
	if comp, ok := cyclecover.TheoremComposition(n); ok {
		fmt.Printf(" (%s)", comp)
	}
	fmt.Println()

	covering, optimal, err := cyclecover.CoverAllToAll(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cyclecover.Describe(covering))
	fmt.Println("certified optimal:", optimal)

	// Verify never trusts the constructor: it re-checks the disjoint
	// routing constraint and the coverage of every request.
	if err := cyclecover.Verify(covering, cyclecover.AllToAll(n)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified ✓")

	for i, c := range covering.Cycles {
		fmt.Printf("  subnetwork %d: cycle %v\n", i, c)
	}
}

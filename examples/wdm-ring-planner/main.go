// WDM ring planner: the workload from the paper's introduction — an
// operator plans a survivable optical layer for a metro ring carrying
// all-to-all traffic. The covering becomes the subnetwork design; each
// cycle receives a working and a spare wavelength; the program reports the
// equipment bill (wavelengths, ADMs, transit load, modelled cost) for a
// range of ring sizes.
package main

import (
	"fmt"
	"log"

	cyclecover "github.com/cyclecover/cyclecover"
)

func main() {
	fmt.Println("survivable WDM ring designs for all-to-all traffic")
	fmt.Println()
	fmt.Printf("%4s  %8s  %11s  %6s  %11s  %10s\n",
		"n", "subnets", "wavelengths", "ADMs", "max transit", "cost")

	for _, n := range []int{5, 7, 9, 11, 13, 15, 17} {
		covering, _, err := cyclecover.CoverAllToAll(n)
		if err != nil {
			log.Fatal(err)
		}
		network, err := cyclecover.PlanWDM(covering, cyclecover.AllToAll(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %8d  %11d  %6d  %11d  %10.1f\n",
			n, covering.Size(), network.Wavelengths(), network.ADMCount(),
			network.MaxTransit(), cyclecover.DefaultCostModel().Cost(network))
	}

	fmt.Println()
	fmt.Println("detailed plan for n = 11:")
	covering, _, err := cyclecover.CoverAllToAll(11)
	if err != nil {
		log.Fatal(err)
	}
	network, err := cyclecover.PlanWDM(covering, cyclecover.AllToAll(11))
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range network.Subnets {
		fmt.Printf("  subnetwork %2d: cycle %-14v working λ%-3d spare λ%-3d\n",
			s.Index, s.Cycle, s.Working, s.Spare)
	}
}

package cyclecover

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPlanManyCtxCancelledSkipsSlots: a batch under an already-fired
// context launches nothing — every slot reports context.Canceled, in
// order, with no panic and no partial results.
func TestPlanManyCtxCancelledSkipsSlots(t *testing.T) {
	p := NewPlanner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ins := make([]Instance, 8)
	for i := range ins {
		ins[i] = AllToAll(5 + i)
	}
	out := p.PlanManyCtx(ctx, ins, 4)
	if len(out) != len(ins) {
		t.Fatalf("%d results for %d inputs", len(out), len(ins))
	}
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("slot %d: err = %v, want Canceled", i, r.Err)
		}
		if r.Covering != nil || r.Network != nil {
			t.Errorf("slot %d: got results alongside cancellation", i)
		}
	}
}

// TestPlanManyCtxMidBatchCancel: cancelling mid-batch keeps completed
// slots, marks unstarted ones Canceled, and returns promptly rather than
// constructing the rest of the queue.
func TestPlanManyCtxMidBatchCancel(t *testing.T) {
	p := NewPlanner()
	// Warm a couple of cheap signatures so early slots can complete.
	if _, err := p.CoverInstance(AllToAll(7)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ins := make([]Instance, 64)
	for i := range ins {
		ins[i] = AllToAll(7) // warm: each slot is a cache hit
	}
	// Cancel concurrently with the batch; whatever slots ran before the
	// cancel completed, the rest must be skipped with Canceled and the
	// call must return. Both outcomes per slot are valid — what is pinned
	// is: no panic, full-length ordered output, and only (result XOR
	// Canceled) slots.
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	out := p.PlanManyCtx(ctx, ins, 2)
	if len(out) != len(ins) {
		t.Fatalf("%d results for %d inputs", len(out), len(ins))
	}
	for i, r := range out {
		switch {
		case r.Err == nil:
			if r.Covering == nil || r.Network == nil {
				t.Errorf("slot %d: success without results", i)
			}
		case errors.Is(r.Err, context.Canceled):
			if r.Covering != nil || r.Network != nil {
				t.Errorf("slot %d: cancelled slot carries results", i)
			}
		default:
			t.Errorf("slot %d: unexpected error %v", i, r.Err)
		}
	}
}

// TestPlanManyCtxBackgroundMatchesPlanMany: the ctx variant with a live
// context is the same API — identical results to PlanMany.
func TestPlanManyCtxBackgroundMatchesPlanMany(t *testing.T) {
	p := NewPlanner()
	ins := []Instance{AllToAll(6), Hub(9, 2), Neighbors(8)}
	a := p.PlanMany(ins, 2)
	b := p.PlanManyCtx(context.Background(), ins, 2)
	for i := range ins {
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("slot %d: err mismatch (%v vs %v)", i, a[i].Err, b[i].Err)
		}
		if a[i].Err == nil && a[i].Covering.Size() != b[i].Covering.Size() {
			t.Fatalf("slot %d: size mismatch", i)
		}
	}
}

// TestPlannerWithStrategy: a planner pinned to one strategy serves it
// for every call, and an unknown strategy surfaces as an error from the
// first plan, not a panic.
func TestPlannerWithStrategy(t *testing.T) {
	p := NewPlanner(WithStrategy("portfolio"))
	cv, err := p.CoverInstanceCtx(context.Background(), AllToAll(10))
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() != Rho(10) {
		t.Fatalf("portfolio planner: %d cycles, want ρ = %d", cv.Size(), Rho(10))
	}
	// Identical to the default pipeline (the portfolio determinism rule).
	dflt := NewPlanner()
	base, err := dflt.CoverInstance(AllToAll(10))
	if err != nil {
		t.Fatal(err)
	}
	if cv.Size() != base.Size() {
		t.Fatalf("portfolio %d cycles vs pipeline %d", cv.Size(), base.Size())
	}

	bad := NewPlanner(WithStrategy("annealing"))
	if _, err := bad.CoverInstance(AllToAll(8)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestPlannerCtxCancelDoesNotPoison: a planner call cancelled mid-
// construction leaves the cache clean for the next caller.
func TestPlannerCtxCancelDoesNotPoison(t *testing.T) {
	p := NewPlanner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.CoverInstanceCtx(ctx, AllToAll(11)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	cv, err := p.CoverInstance(AllToAll(11))
	if err != nil {
		t.Fatalf("cache poisoned: %v", err)
	}
	if cv.Size() != Rho(11) {
		t.Fatalf("recovered plan has %d cycles, want %d", cv.Size(), Rho(11))
	}
	for i := 0; i < 3; i++ {
		if _, err := p.PlanWDMCtx(context.Background(), AllToAll(11)); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

package cyclecover

import (
	"context"
	"fmt"
	"testing"
)

// TestDeltaMatchesOrBeatsCold is the tentpole's quality gate: across
// every demand family and ring size the edge-case sweep covers, and a
// set of single-pair deltas of every kind, the incrementally replanned
// covering must (1) verify against the child demand and (2) cost no more
// cycles than a cold replan of the child — warm repair is budgeted by
// the cold pipeline's size and falls back to cold construction when it
// cannot converge, so a delta plan is never worse than replanning from
// nothing.
func TestDeltaMatchesOrBeatsCold(t *testing.T) {
	specs := func(n int) []string {
		return []string{
			"alltoall",
			"lambda:2",
			"lambda:3",
			"hub:0",
			fmt.Sprintf("hub:%d", n-1),
			"neighbors",
			"random:0.3:5",
			"random:0.8:11",
			"random:0:1",
			"random:1:2",
		}
	}
	// Probe pairs spanning the ring: adjacent, antipodal-ish, wraparound.
	pairsFor := func(n int) [][2]int {
		set := [][2]int{{0, 1}, {0, n / 2}, {1, n - 1}}
		var out [][2]int
		seen := map[[2]int]bool{}
		for _, p := range set {
			u, v := p[0], p[1]
			if u > v {
				u, v = v, u
			}
			if u == v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			out = append(out, [2]int{u, v})
		}
		return out
	}

	ctx := context.Background()
	warm := NewPlanner() // serves the parents and the delta plans
	cold := NewPlanner() // independent cache: cold replans of the children
	checked, repaired := 0, 0
	for n := 3; n <= 16; n++ {
		for _, spec := range specs(n) {
			in, err := ParseInstance(n, spec)
			if err != nil {
				t.Fatalf("n=%d %s: parse: %v", n, spec, err)
			}
			if _, err := warm.CoverInstanceCtx(ctx, in); err != nil {
				t.Fatalf("n=%d %s: parent plan: %v", n, spec, err)
			}
			parentSig := warm.SignatureOf(in)
			for _, p := range pairsFor(n) {
				u, v := p[0], p[1]
				var deltas []string
				deltas = append(deltas, fmt.Sprintf("add:%d:%d", u, v))
				if in.Demand.Mult(u, v) > 0 {
					deltas = append(deltas,
						fmt.Sprintf("remove:%d:%d", u, v),
						fmt.Sprintf("fail:%d:%d", u, v))
				}
				deltas = append(deltas, fmt.Sprintf("set:%d:%d:2", u, v))
				for _, dspec := range deltas {
					d, err := ParseDelta(dspec)
					if err != nil {
						t.Fatalf("n=%d %s %s: %v", n, spec, dspec, err)
					}
					pd, err := warm.PlanDeltaCtx(ctx, parentSig, d)
					if err != nil {
						t.Fatalf("n=%d %s %s: delta plan: %v", n, spec, dspec, err)
					}
					if err := Verify(pd.Covering, pd.Child); err != nil {
						t.Fatalf("n=%d %s %s: repaired covering invalid: %v", n, spec, dspec, err)
					}
					coldCv, err := cold.CoverInstanceCtx(ctx, pd.Child)
					if err != nil {
						t.Fatalf("n=%d %s %s: cold replan: %v", n, spec, dspec, err)
					}
					if pd.Covering.Size() > coldCv.Size() {
						t.Fatalf("n=%d %s %s: delta plan has %d cycles, cold replan %d (method %s)",
							n, spec, dspec, pd.Covering.Size(), coldCv.Size(), pd.Method)
					}
					checked++
					if pd.Repaired {
						repaired++
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("sweep checked nothing")
	}
	// The sweep must exercise the warm path, not just the fallback: on
	// these bounded deltas repair should converge most of the time.
	if repaired*2 < checked {
		t.Fatalf("warm repair converged on only %d of %d deltas", repaired, checked)
	}
	t.Logf("checked %d deltas, %d warm-repaired", checked, repaired)
}
